package trace

import (
	"encoding/json"
	"io"
	"time"
)

// PathSample is one point of the per-path time series: a snapshot of a
// path's (or TCP flow's, or MPTCP subflow's) sender-side transport
// state at a simulated instant. The field set covers the quantities
// the paper's protocol plots are built from: congestion window,
// smoothed RTT, bytes in flight, and cumulative bytes sent/acked.
type PathSample struct {
	// T is the simulated time of the snapshot (never wall time).
	T time.Duration `json:"t"`
	// Path identifies the path (QUIC), subflow (MPTCP) or flow (TCP,
	// always 0).
	Path uint8 `json:"path"`
	// Cwnd is the congestion window in bytes.
	Cwnd int `json:"cwnd"`
	// SRTT is the smoothed RTT estimate; 0 before the first sample.
	SRTT time.Duration `json:"srtt"`
	// InFlight is the retransmittable bytes outstanding on the path.
	InFlight int `json:"in_flight"`
	// BytesSent is the cumulative bytes sent on the path.
	BytesSent uint64 `json:"bytes_sent"`
	// BytesAcked is the cumulative bytes acknowledged on the path.
	BytesAcked uint64 `json:"bytes_acked"`
	// SlowStart reports whether the congestion controller was in slow
	// start at the snapshot.
	SlowStart bool `json:"slow_start"`
}

// SeriesRecorder accumulates PathSamples in arrival order. The
// transport stacks expose SampleInto hooks (core.Conn, tcpsim.Conn,
// mptcpsim.Conn) that append one sample per path; a caller-owned
// sim-clock timer drives the cadence, so the series is exactly as
// deterministic as the simulation itself: same seed, same cadence —
// byte-identical samples.
//
// The zero value is ready to use.
type SeriesRecorder struct {
	// Samples holds every recorded point, in recording order
	// (time-ordered, path-minor within one sampling tick).
	Samples []PathSample
}

// NewSeriesRecorder returns an empty recorder.
func NewSeriesRecorder() *SeriesRecorder { return &SeriesRecorder{} }

// Add appends one sample.
func (r *SeriesRecorder) Add(s PathSample) { r.Samples = append(r.Samples, s) }

// Len reports the number of recorded samples.
func (r *SeriesRecorder) Len() int { return len(r.Samples) }

// PathSeries returns the samples of one path, in time order.
func (r *SeriesRecorder) PathSeries(path uint8) []PathSample {
	var out []PathSample
	for _, s := range r.Samples {
		if s.Path == path {
			out = append(out, s)
		}
	}
	return out
}

// Paths returns the distinct path IDs seen, in first-appearance order
// (deterministic: no map iteration).
func (r *SeriesRecorder) Paths() []uint8 {
	var out []uint8
	var seen [256]bool
	for _, s := range r.Samples {
		if !seen[s.Path] {
			seen[s.Path] = true
			out = append(out, s.Path)
		}
	}
	return out
}

// EncodeJSONL writes the samples as newline-delimited JSON, one sample
// per line, in recording order. Output is byte-reproducible for equal
// sample sequences.
func (r *SeriesRecorder) EncodeJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Samples {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
