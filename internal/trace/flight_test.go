package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingSemantics(t *testing.T) {
	r := NewFlightRecorder(4)
	if r.Len() != 0 || r.Seen() != 0 || r.Dropped() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	for pn := uint64(1); pn <= 3; pn++ {
		r.Trace(Event{Type: PacketSent, PN: pn})
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d after 3 events, want 3/0", r.Len(), r.Dropped())
	}
	for pn := uint64(4); pn <= 10; pn++ {
		r.Trace(Event{Type: PacketSent, PN: pn})
	}
	if r.Len() != 4 || r.Seen() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d seen=%d dropped=%d, want 4/10/6", r.Len(), r.Seen(), r.Dropped())
	}
	evs := r.Events()
	for i, want := range []uint64{7, 8, 9, 10} {
		if evs[i].PN != want {
			t.Fatalf("Events()[%d].PN = %d, want %d (oldest-first, newest retained)", i, evs[i].PN, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestFlightRecorderDumpJSONL(t *testing.T) {
	r := NewFlightRecorder(2)
	r.Trace(Event{Time: time.Millisecond, Type: PacketSent, PN: 1})
	r.Trace(Event{Time: 2 * time.Millisecond, Type: RTOFired, Path: 1})
	r.Trace(Event{Time: 3 * time.Millisecond, Type: ConnClosed})

	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf, "rto_storm"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // header + 2 retained events
		t.Fatalf("dump lines = %d, want 3", len(lines))
	}
	var hdr struct {
		Reason  string `json:"flight_recorder"`
		Events  int    `json:"events"`
		Seen    uint64 `json:"seen"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Reason != "rto_storm" || hdr.Events != 2 || hdr.Seen != 3 || hdr.Dropped != 1 {
		t.Fatalf("header = %+v, want rto_storm/2/3/1", hdr)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != RTOFired {
		t.Fatalf("first dumped event = %s, want %s (oldest retained)", ev.Type, RTOFired)
	}

	// Byte-identical across dumps of the same state.
	var buf2 bytes.Buffer
	if err := r.DumpJSONL(&buf2, "rto_storm"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("repeated dumps of the same ring differ")
	}
}

func TestSeriesRecorder(t *testing.T) {
	r := NewSeriesRecorder()
	for i := 0; i < 3; i++ {
		ts := time.Duration(i) * 100 * time.Millisecond
		r.Add(PathSample{T: ts, Path: 0, Cwnd: 10000 + i})
		r.Add(PathSample{T: ts, Path: 1, Cwnd: 20000 + i})
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
	if got := r.Paths(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Paths = %v, want [0 1] in first-appearance order", got)
	}
	p1 := r.PathSeries(1)
	if len(p1) != 3 || p1[2].Cwnd != 20002 {
		t.Fatalf("PathSeries(1) = %+v, want 3 samples ending at cwnd 20002", p1)
	}

	var a, b bytes.Buffer
	if err := r.EncodeJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.EncodeJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("series encoding not reproducible")
	}
	for i, line := range strings.Split(strings.TrimRight(a.String(), "\n"), "\n") {
		var s PathSample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
}
