package sim

// Rand is a small, fast, deterministic PRNG (xorshift64* core with a
// splitmix64 seeder). The standard library's math/rand would work, but a
// self-contained generator guarantees the sequence never changes under
// us across Go releases, which keeps recorded experiment outputs stable.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded from seed. Any seed (including 0)
// is valid.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the sequence identified by seed.
func (r *Rand) Seed(seed uint64) {
	// splitmix64 step so that nearby seeds give unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork derives an independent child generator. Two Forks from the same
// parent state are decorrelated from each other and from the parent.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}
