// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives every protocol stack and network element in this
// repository. Time is virtual: an event loop pops timestamped events from
// a binary heap and advances the clock to each event's deadline. Nothing
// ever sleeps, so a multi-second emulated transfer completes in
// microseconds of wall time and every run with the same seed is
// bit-for-bit reproducible.
//
// The loop is allocation-free in steady state: executed events return to
// a per-clock free list, the heap is a concrete []*Event with inlined
// sift-up/sift-down (no container/heap interface dispatch), and events
// scheduled for the current instant bypass the heap through a FIFO
// append-only queue.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp, measured as a duration since the start of
// the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration converts t to a time.Duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted forward by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// Never is a sentinel deadline meaning "no deadline armed".
const Never = Time(math.MaxInt64)

// Event is a unit of scheduled work.
//
// Events are pooled: once an event has executed (or has been discarded
// after cancellation) the Clock recycles its storage for a future At.
// An *Event handle is therefore only valid until the event fires;
// Cancel, Cancelled and At must not be called on a handle whose event
// already ran. Timer follows this discipline (it drops its handle when
// the timer fires) and is the safe way to hold re-armable deadlines.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among events with equal deadlines
	fn   func()
	dead bool // cancelled
}

// At reports the deadline of the event.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from running. Cancelling an already-cancelled
// pending event is a no-op; see the pooling note on Event for handles to
// already-executed events.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.dead }

// eventLess orders events by (deadline, scheduling sequence): FIFO among
// equal deadlines.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Clock is the simulation event loop. It is not safe for concurrent use;
// the whole simulation is single-threaded by design (determinism).
type Clock struct {
	now  Time
	heap []*Event // binary min-heap by (at, seq)
	// nowQ holds events scheduled for the instant they were created at.
	// Because virtual time is monotonic and seq increases, the queue is
	// always sorted by (at, seq): popping the head interleaves correctly
	// with the heap without any sifting.
	nowQ    []*Event
	nowHead int
	free    []*Event // recycled Event storage
	seq     uint64
	running bool
	stopped bool
	// Processed counts executed (non-cancelled) events, for tests and
	// runaway detection.
	Processed uint64
	// Limit aborts Run with an error when more than Limit events execute.
	// Zero means no limit.
	Limit uint64
}

// NewClock returns a Clock at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// alloc takes an Event from the free list (or the heap's allocator).
func (c *Clock) alloc(at Time, fn func()) *Event {
	var e *Event
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		e.at, e.fn, e.dead = at, fn, false
	} else {
		e = &Event{at: at, fn: fn}
	}
	e.seq = c.seq
	c.seq++
	return e
}

// release returns an executed or discarded event to the free list,
// dropping its closure so captured state is collectable.
//
//mpq:noescape
func (c *Clock) release(e *Event) {
	e.fn = nil
	c.free = append(c.free, e)
}

// At schedules fn to run at the absolute virtual time at. Scheduling in
// the past (at < Now) is an error in the caller; the event is clamped to
// run "now" to keep the loop monotonic.
func (c *Clock) At(at Time, fn func()) *Event {
	if at <= c.now {
		// Same-instant fast path: append to the FIFO queue, no sifting.
		e := c.alloc(c.now, fn)
		c.nowQ = append(c.nowQ, e)
		return e
	}
	e := c.alloc(at, fn)
	c.heapPush(e)
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.At(c.now.Add(d), fn)
}

// Stop makes Run return after the currently executing event finishes.
func (c *Clock) Stop() { c.stopped = true }

// Pending reports the number of scheduled (possibly cancelled) events.
func (c *Clock) Pending() int { return len(c.heap) + len(c.nowQ) - c.nowHead }

// --- inlined binary heap on []*Event ---

//mpq:noescape
func (c *Clock) heapPush(e *Event) {
	c.heap = append(c.heap, e)
	// Sift up.
	h := c.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// heapPop removes and returns the heap minimum. The caller guarantees
// the heap is non-empty.
//
//mpq:noescape
func (c *Clock) heapPop() *Event {
	h := c.heap
	top := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = nil
	c.heap = h[:n]
	if n == 0 {
		return top
	}
	// Sift e down from the root.
	h = c.heap
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(h[r], h[child]) {
			child = r
		}
		if !eventLess(h[child], e) {
			break
		}
		h[i] = h[child]
		i = child
	}
	h[i] = e
	return top
}

// peek returns the earliest scheduled event (possibly cancelled) without
// removing it, or nil.
//
//mpq:noescape
func (c *Clock) peek() *Event {
	var qn *Event
	if c.nowHead < len(c.nowQ) {
		qn = c.nowQ[c.nowHead]
	}
	if len(c.heap) == 0 {
		return qn
	}
	hn := c.heap[0]
	if qn == nil || eventLess(hn, qn) {
		return hn
	}
	return qn
}

// popNext removes and returns the earliest live event with deadline <=
// deadline, or nil. Cancelled events encountered on the way are
// discarded and recycled.
//
//mpq:noescape
func (c *Clock) popNext(deadline Time) *Event {
	for {
		var qn *Event
		if c.nowHead < len(c.nowQ) {
			qn = c.nowQ[c.nowHead]
		}
		var e *Event
		if hn := (*Event)(nil); len(c.heap) > 0 {
			hn = c.heap[0]
			if qn == nil || eventLess(hn, qn) {
				if hn.at > deadline {
					return nil
				}
				e = c.heapPop()
			}
		}
		if e == nil {
			if qn == nil || qn.at > deadline {
				return nil
			}
			c.nowQ[c.nowHead] = nil
			c.nowHead++
			if c.nowHead == len(c.nowQ) {
				c.nowQ = c.nowQ[:0]
				c.nowHead = 0
			}
			e = qn
		}
		if e.dead {
			c.release(e)
			continue
		}
		return e
	}
}

// NextDeadline reports the deadline of the earliest live event, or
// Never. Together with RunUntil it forms the deadline-bounded stepping
// API an external driver needs to interleave virtual time with an
// outside event source (the live UDP driver blocks on socket
// readability until the wall image of this deadline, then calls
// RunUntil) — see internal/live.
//
// Handle contract: NextDeadline discards cancelled events it finds at
// the head of the queue and recycles their storage, so any retained
// *Event handle to a cancelled event becomes invalid once NextDeadline
// (or any Run variant) is called. Only sim.Timer holds handles safely.
func (c *Clock) NextDeadline() Time {
	for {
		e := c.peek()
		if e == nil {
			return Never
		}
		if !e.dead {
			return e.at
		}
		// Discard the cancelled head and keep looking.
		if c.nowHead < len(c.nowQ) && c.nowQ[c.nowHead] == e {
			c.nowQ[c.nowHead] = nil
			c.nowHead++
			if c.nowHead == len(c.nowQ) {
				c.nowQ = c.nowQ[:0]
				c.nowHead = 0
			}
		} else {
			c.heapPop()
		}
		c.release(e)
	}
}

// run is the shared loop of Run and RunUntil: execute live events in
// (deadline, FIFO) order while their deadline is <= deadline.
func (c *Clock) run(deadline Time) error {
	c.stopped = false
	defer func() { c.running = false }()
	for !c.stopped {
		e := c.popNext(deadline)
		if e == nil {
			return nil
		}
		if e.at < c.now {
			return fmt.Errorf("sim: time went backwards: %v -> %v", c.now, e.at)
		}
		c.now = e.at
		c.Processed++
		if c.Limit > 0 && c.Processed > c.Limit {
			c.release(e)
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", c.Limit, c.now)
		}
		e.fn()
		c.release(e)
	}
	return nil
}

// Run executes events in deadline order until the queue drains, Stop is
// called, or the event limit is exceeded.
func (c *Clock) Run() error {
	if c.running {
		return fmt.Errorf("sim: Run re-entered")
	}
	c.running = true
	return c.run(Never)
}

// RunUntil executes events with deadlines <= deadline, then advances the
// clock to exactly deadline. It returns any Run error.
//
// RunUntil is the deadline-bounded stepping entry point (Run runs to
// exhaustion): callers may invoke it repeatedly with increasing
// deadlines, and each call executes exactly the events Run would have
// executed in that window, in the same (deadline, FIFO) order. Because
// the clock lands on exactly deadline even when no event was due,
// repeated calls make virtual time a monotone image of any outside
// timebase — the live driver maps wall-elapsed time through it.
//
// Handle contract: an *Event handle is invalid once its event has fired
// or been discarded, regardless of which Run variant drove it; after
// RunUntil returns, handles to events with deadlines <= deadline must
// not be used. Events scheduled beyond deadline keep valid handles and
// may still be cancelled before a later call.
func (c *Clock) RunUntil(deadline Time) error {
	if c.running {
		return fmt.Errorf("sim: RunUntil re-entered")
	}
	c.running = true
	err := c.run(deadline)
	if err == nil && c.now < deadline {
		c.now = deadline
	}
	return err
}

// Timer is a re-armable single-shot timer bound to a Clock, analogous to
// time.Timer but virtual. The zero value is unusable; use NewTimer.
type Timer struct {
	clock *Clock
	ev    *Event
	fn    func()
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(c *Clock, fn func()) *Timer {
	return &Timer{clock: c, fn: fn}
}

// Reset (re)arms the timer to fire at absolute time at, replacing any
// previously armed deadline.
func (t *Timer) Reset(at Time) {
	t.Stop()
	t.ev = t.clock.At(at, t.fire)
}

// ResetAfter (re)arms the timer to fire d from now.
func (t *Timer) ResetAfter(d time.Duration) { t.Reset(t.clock.Now().Add(d)) }

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop disarms the timer. It reports whether a pending firing was
// prevented.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	t.ev.Cancel()
	t.ev = nil
	return true
}

// Armed reports whether the timer currently has a pending deadline.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline reports the pending deadline, or Never when unarmed.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return Never
	}
	return t.ev.at
}
