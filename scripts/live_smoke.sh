#!/bin/sh
# live_smoke.sh — two-process loopback smoke for live mode.
#
# Builds cmd/mpq-live once, then runs real server and client processes
# over loopback UDP: a 1 MB single-path GET, a 1 MB two-path GET, and
# a 10 MB two-path GET that must show aggregation (every path carries
# data and the summed per-path rate beats the best single path; the
# client's -expect-aggregation flag enforces it).
#
# The 10 MB run also gates goodput: below MIN_GOODPUT_MBPS (default
# 54, three times the 17.9 Mbps pre-fast-lane PR 7 baseline) the smoke
# fails — the batched-I/O fast lane measures ~10x higher, so tripping
# this means a real hot-path regression, not machine noise.
#
# Exits 0 with a notice when the environment denies UDP sockets, so
# sandboxed checkouts are not failed for something they cannot do.
set -eu

cd "$(dirname "$0")/.."

MIN_GOODPUT_MBPS=${MIN_GOODPUT_MBPS:-54}

A1=127.0.0.1:47631
A2=127.0.0.1:47632

tmp=$(mktemp -d)
spid=
cleanup() {
    [ -n "$spid" ] && kill "$spid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/mpq-live" ./cmd/mpq-live

# run_pair <addrs> <size> [client flags...] — one server process, one
# client process, both on loopback. The server exits after the
# connection closes (-once), with a short idle timeout as a backstop
# should the client's CONNECTION_CLOSE get lost.
run_pair() {
    addrs=$1
    size=$2
    shift 2
    : > "$tmp/server.log"
    "$tmp/mpq-live" -server -once -idle 5s -listen "$addrs" >"$tmp/server.log" 2>&1 &
    spid=$!
    i=0
    until grep -q '^listening' "$tmp/server.log"; do
        if ! kill -0 "$spid" 2>/dev/null; then
            if grep -qi 'permission denied\|not permitted' "$tmp/server.log"; then
                echo "live-smoke: UDP sockets unavailable in this environment, skipping"
                spid=
                exit 0
            fi
            echo "live-smoke: server failed to start:" >&2
            cat "$tmp/server.log" >&2
            exit 1
        fi
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "live-smoke: server never reported listening" >&2; exit 1; }
        sleep 0.1
    done
    "$tmp/mpq-live" -connect "$addrs" -size "$size" -timeout 60s "$@"
    wait "$spid"
    spid=
}

echo "== live smoke: 1 MB, one path"
run_pair "$A1" 1000000

echo "== live smoke: 1 MB, two paths"
run_pair "$A1,$A2" 1000000

echo "== live smoke: 10 MB, two paths, aggregation required"
run_pair "$A1,$A2" 10000000 -expect-aggregation -json >"$tmp/client.json"
cat "$tmp/client.json"

# Goodput gate: extract goodput_mbps from the client's JSON and
# compare against the floor (awk handles the float compare portably).
goodput=$(sed -n 's/.*"goodput_mbps":\([0-9.eE+-]*\).*/\1/p' "$tmp/client.json")
if [ -z "$goodput" ]; then
    echo "live-smoke: no goodput_mbps in client output" >&2
    exit 1
fi
if awk -v g="$goodput" -v min="$MIN_GOODPUT_MBPS" 'BEGIN { exit !(g < min) }'; then
    echo "live-smoke: goodput $goodput Mbps below the $MIN_GOODPUT_MBPS Mbps floor" >&2
    exit 1
fi
echo "goodput gate ok: $goodput Mbps >= $MIN_GOODPUT_MBPS Mbps"

echo "live-smoke ok"
