package wire

import (
	"fmt"
	"time"
)

// FrameType tags each frame on the wire.
type FrameType byte

// Frame type codes. The numbering loosely follows Google QUIC with the
// multipath additions (ADD_ADDRESS, PATHS) taking unused codepoints.
const (
	TypePadding         FrameType = 0x00
	TypeConnectionClose FrameType = 0x02
	TypeWindowUpdate    FrameType = 0x04
	TypeBlocked         FrameType = 0x05
	TypePing            FrameType = 0x07
	TypeAddAddress      FrameType = 0x10
	TypePaths           FrameType = 0x11
	TypeHandshake       FrameType = 0x18
	TypeAck             FrameType = 0x40
	TypeStream          FrameType = 0x80
)

// StreamID identifies a QUIC stream. Stream 1 carries the (emulated)
// crypto handshake, like Google QUIC; application data starts at 3 for
// client-initiated streams.
type StreamID uint64

// Frame is one control or data unit carried inside a packet. Frames are
// independent of the packets that contain them: on retransmission a
// frame may travel in a new packet, on a different path (§3).
type Frame interface {
	Type() FrameType
	// EncodedSize is the exact number of bytes Append will add.
	EncodedSize() int
	// Append serializes the frame.
	Append(b []byte) []byte
	// Retransmittable reports whether loss of the containing packet
	// must trigger retransmission of this frame's content.
	Retransmittable() bool
}

// PaddingFrame fills space (N bytes of zero).
type PaddingFrame struct{ Length int }

func (f *PaddingFrame) Type() FrameType       { return TypePadding }
func (f *PaddingFrame) EncodedSize() int      { return f.Length }
func (f *PaddingFrame) Retransmittable() bool { return false }
func (f *PaddingFrame) Append(b []byte) []byte {
	for i := 0; i < f.Length; i++ {
		b = append(b, 0)
	}
	return b
}

// PingFrame elicits an acknowledgment.
type PingFrame struct{}

func (f *PingFrame) Type() FrameType        { return TypePing }
func (f *PingFrame) EncodedSize() int       { return 1 }
func (f *PingFrame) Retransmittable() bool  { return true }
func (f *PingFrame) Append(b []byte) []byte { return append(b, byte(TypePing)) }

// StreamFrame carries stream data. The (StreamID, Offset) pair lets the
// receiver reorder data received over different paths without any
// additional multipath sequence number (§3).
type StreamFrame struct {
	StreamID StreamID
	Offset   uint64
	Data     []byte
	// DataLen is used when Data is nil (struct-mode fast path): the
	// frame behaves as if it carried DataLen bytes.
	DataLen int
	Fin     bool
}

// Len returns the stream payload length.
func (f *StreamFrame) Len() int {
	if f.Data != nil {
		return len(f.Data)
	}
	return f.DataLen
}

func (f *StreamFrame) Type() FrameType       { return TypeStream }
func (f *StreamFrame) Retransmittable() bool { return true }

func (f *StreamFrame) EncodedSize() int {
	return 1 + VarintLen(uint64(f.StreamID)) + VarintLen(f.Offset) +
		VarintLen(uint64(f.Len())) + f.Len()
}

func (f *StreamFrame) Append(b []byte) []byte {
	t := byte(TypeStream)
	if f.Fin {
		t |= 0x01
	}
	b = append(b, t)
	b = AppendVarint(b, uint64(f.StreamID))
	b = AppendVarint(b, f.Offset)
	b = AppendVarint(b, uint64(f.Len()))
	if f.Data != nil {
		b = append(b, f.Data...)
	} else {
		for i := 0; i < f.DataLen; i++ {
			b = append(b, 0xAA)
		}
	}
	return b
}

// MaxStreamDataLen reports how many stream-payload bytes fit when the
// frame must not exceed budget encoded bytes.
func (f *StreamFrame) MaxStreamDataLen(budget int) int {
	overhead := 1 + VarintLen(uint64(f.StreamID)) + VarintLen(f.Offset)
	// Length varint grows with the payload; iterate the fixed point.
	for l := budget - overhead - 1; l >= 0; l-- {
		if overhead+VarintLen(uint64(l))+l <= budget {
			return l
		}
	}
	return 0
}

// WindowUpdateFrame raises a flow-control limit. StreamID 0 addresses
// the connection-level window. MPQUIC broadcasts these frames on every
// active path to dodge receive-buffer head-of-line blocking (§3).
type WindowUpdateFrame struct {
	StreamID StreamID // 0 = connection level
	Offset   uint64   // new absolute byte limit
}

func (f *WindowUpdateFrame) Type() FrameType       { return TypeWindowUpdate }
func (f *WindowUpdateFrame) Retransmittable() bool { return true }
func (f *WindowUpdateFrame) EncodedSize() int {
	return 1 + VarintLen(uint64(f.StreamID)) + VarintLen(f.Offset)
}
func (f *WindowUpdateFrame) Append(b []byte) []byte {
	b = append(b, byte(TypeWindowUpdate))
	b = AppendVarint(b, uint64(f.StreamID))
	b = AppendVarint(b, f.Offset)
	return b
}

// BlockedFrame signals the sender is flow-control blocked.
type BlockedFrame struct {
	StreamID StreamID
}

func (f *BlockedFrame) Type() FrameType       { return TypeBlocked }
func (f *BlockedFrame) Retransmittable() bool { return true }
func (f *BlockedFrame) EncodedSize() int      { return 1 + VarintLen(uint64(f.StreamID)) }
func (f *BlockedFrame) Append(b []byte) []byte {
	b = append(b, byte(TypeBlocked))
	return AppendVarint(b, uint64(f.StreamID))
}

// AddAddressFrame advertises one local address to the peer, enabling
// e.g. a dual-stack server to expose its IPv6 address over an
// IPv4-initiated connection (§3). Being encrypted and authenticated it
// avoids MPTCP's ADD_ADDR security woes.
type AddAddressFrame struct {
	AddrIndex uint8
	Address   string
}

func (f *AddAddressFrame) Type() FrameType       { return TypeAddAddress }
func (f *AddAddressFrame) Retransmittable() bool { return true }
func (f *AddAddressFrame) EncodedSize() int {
	return 1 + 1 + VarintLen(uint64(len(f.Address))) + len(f.Address)
}
func (f *AddAddressFrame) Append(b []byte) []byte {
	b = append(b, byte(TypeAddAddress), f.AddrIndex)
	b = AppendVarint(b, uint64(len(f.Address)))
	return append(b, f.Address...)
}

// PathInfo is one entry of a PATHS frame.
type PathInfo struct {
	PathID PathID
	// PotentiallyFailed is set when the sender saw an RTO on the path
	// with no activity since — the signal that lets the peer skip its
	// own RTO during handover (§4.3).
	PotentiallyFailed bool
	// SRTT is the sender's smoothed RTT estimate for the path.
	SRTT time.Duration
}

// PathsFrame gives the peer a global view of the sender's active paths
// and their performance (§3, Path Management).
type PathsFrame struct {
	Paths []PathInfo
}

func (f *PathsFrame) Type() FrameType       { return TypePaths }
func (f *PathsFrame) Retransmittable() bool { return true }
func (f *PathsFrame) EncodedSize() int {
	n := 1 + VarintLen(uint64(len(f.Paths)))
	for _, p := range f.Paths {
		n += 1 + 1 + VarintLen(uint64(p.SRTT/time.Microsecond))
	}
	return n
}
func (f *PathsFrame) Append(b []byte) []byte {
	b = append(b, byte(TypePaths))
	b = AppendVarint(b, uint64(len(f.Paths)))
	for _, p := range f.Paths {
		var flags byte
		if p.PotentiallyFailed {
			flags |= 0x01
		}
		b = append(b, byte(p.PathID), flags)
		b = AppendVarint(b, uint64(p.SRTT/time.Microsecond))
	}
	return b
}

// ConnectionCloseFrame terminates the connection.
type ConnectionCloseFrame struct {
	ErrorCode uint32
	Reason    string
}

func (f *ConnectionCloseFrame) Type() FrameType       { return TypeConnectionClose }
func (f *ConnectionCloseFrame) Retransmittable() bool { return true }
func (f *ConnectionCloseFrame) EncodedSize() int {
	return 1 + 4 + VarintLen(uint64(len(f.Reason))) + len(f.Reason)
}
func (f *ConnectionCloseFrame) Append(b []byte) []byte {
	b = append(b, byte(TypeConnectionClose))
	b = appendUint32(b, f.ErrorCode)
	b = AppendVarint(b, uint64(len(f.Reason)))
	return append(b, f.Reason...)
}

// HandshakeMessageType labels the emulated crypto handshake messages.
type HandshakeMessageType uint8

// Handshake message types of the 1-RTT QUIC-crypto-style exchange.
const (
	HandshakeCHLO HandshakeMessageType = 1 // client hello (with key share)
	HandshakeSHLO HandshakeMessageType = 2 // server hello (completes keys)
	// HandshakeCHLO0RTT is a client hello under a cached server
	// config: the client already derived keys and may attach 0-RTT
	// application data in the same flight.
	HandshakeCHLO0RTT HandshakeMessageType = 3
)

// HandshakeFrame carries the emulated crypto handshake. Its payload
// stands in for the CHLO/SHLO blobs of QUIC crypto (§2: a QUIC
// connection starts with a 1-RTT secure handshake).
type HandshakeFrame struct {
	Message HandshakeMessageType
	Payload []byte
}

func (f *HandshakeFrame) Type() FrameType       { return TypeHandshake }
func (f *HandshakeFrame) Retransmittable() bool { return true }
func (f *HandshakeFrame) EncodedSize() int {
	return 1 + 1 + VarintLen(uint64(len(f.Payload))) + len(f.Payload)
}
func (f *HandshakeFrame) Append(b []byte) []byte {
	b = append(b, byte(TypeHandshake), byte(f.Message))
	b = AppendVarint(b, uint64(len(f.Payload)))
	return append(b, f.Payload...)
}

// ParseFrame decodes the frame at the front of b, returning it and the
// bytes consumed. Payload-carrying frames copy their bytes out of b.
func ParseFrame(b []byte) (Frame, int, error) {
	return parseFrame(b, false)
}

// parseFrame decodes one frame. With borrow set, STREAM and HANDSHAKE
// payloads alias b (see DecodeBorrowed).
func parseFrame(b []byte, borrow bool) (Frame, int, error) {
	if len(b) == 0 {
		return nil, 0, ErrTruncated
	}
	t := b[0]
	switch {
	case t&byte(TypeStream) != 0:
		return parseStreamFrame(b, borrow)
	case t&byte(TypeAck) != 0:
		return parseAckFrame(b)
	}
	switch FrameType(t) {
	case TypePadding:
		n := 0
		for n < len(b) && b[n] == 0 {
			n++
		}
		return &PaddingFrame{Length: n}, n, nil
	case TypePing:
		return &PingFrame{}, 1, nil
	case TypeWindowUpdate:
		off := 1
		sid, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("WINDOW_UPDATE", err)
		}
		off += n
		lim, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("WINDOW_UPDATE", err)
		}
		off += n
		return &WindowUpdateFrame{StreamID: StreamID(sid), Offset: lim}, off, nil
	case TypeBlocked:
		sid, n, err := ConsumeVarint(b[1:])
		if err != nil {
			return nil, 0, frameErr("BLOCKED", err)
		}
		return &BlockedFrame{StreamID: StreamID(sid)}, 1 + n, nil
	case TypeAddAddress:
		if len(b) < 2 {
			return nil, 0, frameErr("ADD_ADDRESS", ErrTruncated)
		}
		off := 2
		l, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("ADD_ADDRESS", err)
		}
		off += n
		s, n, err := consumeBytes(b[off:], int(l))
		if err != nil {
			return nil, 0, frameErr("ADD_ADDRESS", err)
		}
		off += n
		return &AddAddressFrame{AddrIndex: b[1], Address: string(s)}, off, nil
	case TypePaths:
		off := 1
		cnt, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("PATHS", err)
		}
		off += n
		if cnt > 256 {
			return nil, 0, fmt.Errorf("wire: PATHS frame with %d entries", cnt)
		}
		f := &PathsFrame{Paths: make([]PathInfo, 0, cnt)}
		for i := uint64(0); i < cnt; i++ {
			if len(b) < off+2 {
				return nil, 0, frameErr("PATHS", ErrTruncated)
			}
			pi := PathInfo{PathID: PathID(b[off]), PotentiallyFailed: b[off+1]&0x01 != 0}
			off += 2
			us, n, err := ConsumeVarint(b[off:])
			if err != nil {
				return nil, 0, frameErr("PATHS", err)
			}
			off += n
			if us > maxDurationUS {
				return nil, 0, frameErr("PATHS", errDurationRange)
			}
			pi.SRTT = time.Duration(us) * time.Microsecond
			f.Paths = append(f.Paths, pi)
		}
		return f, off, nil
	case TypeConnectionClose:
		off := 1
		code, n, err := consumeUint32(b[off:])
		if err != nil {
			return nil, 0, frameErr("CONNECTION_CLOSE", err)
		}
		off += n
		l, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("CONNECTION_CLOSE", err)
		}
		off += n
		s, n, err := consumeBytes(b[off:], int(l))
		if err != nil {
			return nil, 0, frameErr("CONNECTION_CLOSE", err)
		}
		off += n
		return &ConnectionCloseFrame{ErrorCode: code, Reason: string(s)}, off, nil
	case TypeHandshake:
		if len(b) < 2 {
			return nil, 0, frameErr("HANDSHAKE", ErrTruncated)
		}
		off := 2
		l, n, err := ConsumeVarint(b[off:])
		if err != nil {
			return nil, 0, frameErr("HANDSHAKE", err)
		}
		off += n
		p, n, err := consumeBytes(b[off:], int(l))
		if err != nil {
			return nil, 0, frameErr("HANDSHAKE", err)
		}
		off += n
		payload := p
		if !borrow {
			payload = make([]byte, len(p))
			copy(payload, p)
		}
		return &HandshakeFrame{Message: HandshakeMessageType(b[1]), Payload: payload}, off, nil
	default:
		return nil, 0, fmt.Errorf("wire: unknown frame type %#x", t)
	}
}

func parseStreamFrame(b []byte, borrow bool) (Frame, int, error) {
	fin := b[0]&0x01 != 0
	off := 1
	sid, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("STREAM", err)
	}
	off += n
	offset, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("STREAM", err)
	}
	off += n
	l, n, err := ConsumeVarint(b[off:])
	if err != nil {
		return nil, 0, frameErr("STREAM", err)
	}
	off += n
	data, n, err := consumeBytes(b[off:], int(l))
	if err != nil {
		return nil, 0, frameErr("STREAM", err)
	}
	off += n
	if !borrow {
		cp := make([]byte, len(data))
		copy(cp, data)
		data = cp
	}
	return &StreamFrame{StreamID: StreamID(sid), Offset: offset, Data: data, Fin: fin}, off, nil
}
